// Tests for the off-thread inference engine and its RealTimeIds
// integration: in-order verdict delivery, backpressure accounting, clean
// shutdown with work in flight, offload-vs-inline report equality, and
// the ResourceMeter's rate-limited RSS probe.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "capture/tap.hpp"
#include "container/runtime.hpp"
#include "ids/infer_engine.hpp"
#include "ids/realtime_ids.hpp"
#include "ids/resource_meter.hpp"
#include "net/network.hpp"

namespace ddoshield::ids {
namespace {

using util::Rng;
using util::SimTime;

/// Returns each row's first feature rounded to an int; optionally dawdles
/// per batch so tests can hold the scoring thread busy on purpose.
class EchoModel : public ml::Classifier {
 public:
  explicit EchoModel(std::chrono::microseconds batch_delay = {}) : delay_{batch_delay} {}

  std::string name() const override { return "echo"; }
  void fit(const ml::DesignMatrix&, const std::vector<int>&) override {}
  bool trained() const override { return true; }
  int predict(std::span<const double> row) const override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    return static_cast<int>(row[0]);
  }
  void save(util::ByteWriter&) const override {}
  void load(util::ByteReader&) override {}
  std::uint64_t parameter_bytes() const override { return 8; }
  std::uint64_t inference_scratch_bytes() const override { return 8; }

 private:
  std::chrono::microseconds delay_;
};

ml::DesignMatrix one_row_matrix(double value) {
  ml::DesignMatrix x{1};
  x.add_row(std::vector<double>{value});
  return x;
}

TEST(InferenceEngineTest, RejectsUntrainedModel) {
  class Untrained : public EchoModel {
   public:
    bool trained() const override { return false; }
  } untrained;
  EXPECT_THROW((InferenceEngine{untrained}), std::logic_error);
}

TEST(InferenceEngineTest, DeliversResultsInSubmissionOrder) {
  EchoModel model;
  InferenceEngine engine{model};
  constexpr std::uint64_t kJobs = 50;
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(engine.submit(one_row_matrix(static_cast<double>(i))), i);
  }
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    const InferResult result = engine.collect();
    EXPECT_EQ(result.seq, i);
    ASSERT_EQ(result.verdicts.size(), 1u);
    EXPECT_EQ(result.verdicts[0], static_cast<int>(i));
  }
  EXPECT_EQ(engine.outstanding(), 0u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.submitted, kJobs);
  EXPECT_EQ(stats.completed, kJobs);
  EXPECT_EQ(stats.rows_scored, kJobs);
}

TEST(InferenceEngineTest, CollectWithNothingOutstandingThrows) {
  EchoModel model;
  InferenceEngine engine{model};
  EXPECT_THROW(engine.collect(), std::logic_error);
  InferResult result;
  EXPECT_FALSE(engine.try_collect(result));
}

TEST(InferenceEngineTest, TinyRingBackpressuresWithoutLosingJobs) {
  // 2 ms per batch keeps the worker busy while the producer floods a
  // one-slot ring: submits must stall (counted) but never drop.
  EchoModel model{std::chrono::microseconds{2000}};
  InferenceEngine engine{model, InferEngineConfig{.ring_capacity = 1}};
  constexpr std::uint64_t kJobs = 8;
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    engine.submit(one_row_matrix(static_cast<double>(i)));
  }
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    const InferResult result = engine.collect();
    EXPECT_EQ(result.seq, i);
    EXPECT_EQ(result.verdicts[0], static_cast<int>(i));
  }
  const auto stats = engine.stats();
  EXPECT_EQ(stats.completed, kJobs);
  EXPECT_GE(stats.backpressure_waits, 1u);
  EXPECT_GE(stats.ring_high_water, 1u);
}

TEST(InferenceEngineTest, DestructionWithOutstandingJobsIsClean) {
  EchoModel model{std::chrono::microseconds{1000}};
  auto engine = std::make_unique<InferenceEngine>(model);
  for (int i = 0; i < 6; ++i) engine->submit(one_row_matrix(i));
  engine.reset();  // must join the worker without hanging or crashing
}

// --------------------------------------------------------------------------
// RealTimeIds offload integration
// --------------------------------------------------------------------------

/// Classifies by destination port, as ids_test's stub does.
class PortModel : public ml::Classifier {
 public:
  std::string name() const override { return "port"; }
  void fit(const ml::DesignMatrix&, const std::vector<int>&) override {}
  bool trained() const override { return true; }
  int predict(std::span<const double> row) const override {
    return row[5] > 0.14 ? 1 : 0;  // dst_port 9999/65535 = 0.1526
  }
  void save(util::ByteWriter&) const override {}
  void load(util::ByteReader&) override {}
  std::uint64_t parameter_bytes() const override { return 1024; }
  std::uint64_t inference_scratch_bytes() const override { return 256; }
};

/// A self-contained sender→victim world; constructed fresh per run so the
/// inline and offload scenarios start from identical state.
struct World {
  net::Network net;
  net::Node* sender = nullptr;
  net::Node* victim = nullptr;
  container::ContainerRuntime runtime;
  container::Container* ids_box = nullptr;
  capture::PacketTap tap;
  PortModel model;

  World() {
    sender = &net.add_node("sender", net::Ipv4Address{10, 0, 0, 1});
    victim = &net.add_node("victim", net::Ipv4Address{10, 0, 0, 2});
    net.add_link(*sender, *victim, net::LinkConfig{});
    sender->set_default_route(0);
    victim->set_default_route(0);
    tap.attach_to(*victim);
    runtime.register_image({"test/ids", "1", nullptr});
    ids_box = &runtime.create("ids", "test/ids:1");
    ids_box->attach_node(*victim);
    ids_box->start();
  }

  void emit(std::uint16_t dst_port, net::TrafficOrigin origin) {
    net::Packet p;
    p.dst = victim->address();
    p.dst_port = dst_port;
    p.proto = net::IpProto::kUdp;
    p.payload_bytes = 64;
    p.origin = origin;
    sender->send(std::move(p));
  }

  std::vector<WindowReport> run_scenario(bool offload) {
    IdsConfig config;
    config.offload_inference = offload;
    config.infer_ring_capacity = 2;  // small: exercise drain-while-running
    RealTimeIds ids{*ids_box, Rng{1}, model, config};
    ids.attach_tap(tap);
    ids.start();
    // A mixed workload across several windows.
    for (int w = 0; w < 5; ++w) {
      for (int i = 0; i < 3 + w; ++i) {
        const bool attack = (w + i) % 2 == 0;
        net.simulator().schedule(
            SimTime::millis(static_cast<std::int64_t>(w) * 1000 + 100 + i * 50), [=, this] {
              emit(attack ? 9999 : 80,
                   attack ? net::TrafficOrigin::kMiraiUdpFlood : net::TrafficOrigin::kHttp);
            });
      }
    }
    net.simulator().run_until(SimTime::millis(5500));
    ids.flush();
    return ids.reports();
  }
};

TEST(OffloadTest, OffthreadReportsMatchInlineExactly) {
  const auto inline_reports = World{}.run_scenario(false);
  const auto offload_reports = World{}.run_scenario(true);

  ASSERT_EQ(offload_reports.size(), inline_reports.size());
  ASSERT_GE(inline_reports.size(), 5u);
  for (std::size_t i = 0; i < inline_reports.size(); ++i) {
    const auto& a = inline_reports[i];
    const auto& b = offload_reports[i];
    EXPECT_EQ(b.window_index, a.window_index);
    EXPECT_EQ(b.packets, a.packets);
    EXPECT_EQ(b.truth_malicious, a.truth_malicious);
    EXPECT_EQ(b.predicted_malicious, a.predicted_malicious);
    EXPECT_DOUBLE_EQ(b.accuracy, a.accuracy);
    EXPECT_EQ(b.single_class, a.single_class);
  }
}

TEST(OffloadTest, FlushDrainsAllPendingWindows) {
  World world;
  IdsConfig config;
  config.offload_inference = true;
  RealTimeIds ids{*world.ids_box, Rng{1}, world.model, config};
  ids.attach_tap(world.tap);
  ids.start();
  world.net.simulator().schedule(SimTime::millis(100),
                                 [&world] { world.emit(80, net::TrafficOrigin::kHttp); });
  world.net.simulator().run_until(SimTime::millis(1500));
  ids.flush();  // the partial second window closes and drains too
  ASSERT_EQ(ids.reports().size(), 1u);
  EXPECT_EQ(ids.reports()[0].packets, 1u);
}

// --------------------------------------------------------------------------
// ResourceMeter
// --------------------------------------------------------------------------

TEST(ResourceMeterTest, RssSamplingIsRateLimitedPerWindow) {
  ResourceMeter meter{"test", ResourceMeterConfig{}};
  const std::uint64_t first = meter.sample_rss_kb(0);
  EXPECT_GT(first, 0u);  // a live process has nonzero RSS
  EXPECT_EQ(meter.samples_taken(), 1u);
  EXPECT_EQ(meter.sample_rss_kb(0), first);  // cached, no second read
  EXPECT_EQ(meter.samples_taken(), 1u);
  meter.sample_rss_kb(1);
  EXPECT_EQ(meter.samples_taken(), 2u);
  meter.sample_rss_kb(1);
  EXPECT_EQ(meter.samples_taken(), 2u);
}

TEST(ResourceMeterTest, WindowCpuPercentClampsAt100) {
  ResourceMeter meter{"test", ResourceMeterConfig{}};
  const std::uint64_t window_ns = 1'000'000'000;
  // An hour of modelled work in a one-second window clamps.
  EXPECT_DOUBLE_EQ(meter.window_cpu_percent(3'600'000'000'000ull, 0, window_ns), 100.0);
  // Zero measured work still carries the fixed per-window overhead.
  ResourceMeterConfig no_overhead;
  no_overhead.per_window_overhead_ms = 0.0;
  ResourceMeter lean{"lean", no_overhead};
  EXPECT_DOUBLE_EQ(lean.window_cpu_percent(0, 0, window_ns), 0.0);
  EXPECT_GT(meter.window_cpu_percent(0, 0, window_ns), 0.0);
}

}  // namespace
}  // namespace ddoshield::ids
