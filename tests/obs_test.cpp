// Unit tests for src/obs: metrics instruments, scoped timers, sim-time
// tracing with Chrome export, the periodic sampler, and the JSON snapshot
// writer.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "net/simulator.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::obs {
namespace {

using util::SimTime;

// --------------------------------------------------------------------------
// Counter / Gauge
// --------------------------------------------------------------------------

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, TracksValueAndHighWater) {
  Gauge g;
  g.set(3.0);
  g.set(10.0);
  g.set(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_DOUBLE_EQ(g.high_water(), 10.0);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  EXPECT_DOUBLE_EQ(g.high_water(), 10.0);
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

TEST(HistogramTest, LogBucketsLandWhereExpected) {
  Histogram h;
  h.observe(0);     // bucket 0: [0, 2)
  h.observe(1);     // bucket 0
  h.observe(2);     // bucket 1: [2, 4)
  h.observe(3);     // bucket 1
  h.observe(1024);  // bucket 10
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[10], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantilesAreOrderedAndInRange) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // Log-bucketed: p50 of uniform 1..1000 must land within a factor of 2.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.observe(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.buckets()[2], 0u);
}

TEST(HistogramTest, ExactPowersOfTwoOpenTheirOwnBucket) {
  // 2^k is the inclusive lower edge of bucket k, and 2^k - 1 is the
  // inclusive upper edge of bucket k-1 — the off-by-one the log2 bucketing
  // is most likely to get wrong.
  Histogram at_edge;
  for (std::size_t k = 1; k < Histogram::kBuckets; ++k) at_edge.observe(1ull << k);
  for (std::size_t k = 1; k < Histogram::kBuckets; ++k) {
    EXPECT_EQ(at_edge.buckets()[k], 1u) << "2^" << k;
  }
  EXPECT_EQ(at_edge.count(), Histogram::kBuckets - 1);

  Histogram below_edge;
  for (std::size_t k = 2; k < Histogram::kBuckets; ++k) below_edge.observe((1ull << k) - 1);
  for (std::size_t k = 2; k < Histogram::kBuckets; ++k) {
    EXPECT_EQ(below_edge.buckets()[k - 1], 1u) << "2^" << k << " - 1";
  }
}

TEST(HistogramTest, ZeroAndUint64MaxLandAtTheExtremes) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.buckets()[0], 2u);  // 0 and 1 share the [0, 2) bucket
  EXPECT_EQ(h.buckets()[Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, CountAlwaysEqualsBucketSum) {
  Histogram h;
  const std::uint64_t samples[] = {0, 1, 2, 3, 4, 1023, 1024, 1025,
                                   (1ull << 32), std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : samples) h.observe(v);
  std::uint64_t total = 0;
  for (const std::uint64_t b : h.buckets()) total += b;
  EXPECT_EQ(total, h.count());
  EXPECT_EQ(h.count(), 10u);
}

TEST(HistogramTest, PercentileAccessorsMatchQuantile) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.observe(v);
  EXPECT_DOUBLE_EQ(h.p50(), h.quantile(0.50));
  EXPECT_DOUBLE_EQ(h.p90(), h.quantile(0.90));
  EXPECT_DOUBLE_EQ(h.p99(), h.quantile(0.99));
  EXPECT_DOUBLE_EQ(h.p999(), h.quantile(0.999));
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_LE(h.p999(), 10000.0);
}

TEST(HistogramTest, TopBucketQuantileInterpolatesInsteadOfDegenerating) {
  // Bucket 63 spans [2^63, 2^64); the old upper-edge clamp to 2^63 made
  // hi == lo there, so every quantile that landed in the top bucket
  // collapsed to its floor. With the ldexp edge the interpolation spreads
  // across the bucket and stays within the observed range.
  Histogram h;
  const std::uint64_t lo = 1ull << 63;
  const std::uint64_t hi = std::numeric_limits<std::uint64_t>::max();
  for (int i = 0; i < 100; ++i) h.observe(hi);
  h.observe(lo);
  const double p50 = h.quantile(0.50);
  EXPECT_GT(p50, static_cast<double>(lo));
  EXPECT_LE(p50, static_cast<double>(hi));
  // Quantiles remain ordered within the degenerate-prone bucket.
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
}

TEST(HistogramTest, SingleSampleIsEveryQuantile) {
  // Regression: with exactly one observation, interpolation used to put
  // p50/p90 partway through the sample's bucket — for a single top-bucket
  // sample (2^63) that reported quantiles ~2^62 away from the only value
  // ever observed. One sample IS the whole distribution.
  for (const std::uint64_t v : std::initializer_list<std::uint64_t>{
           0, 1, 1000, 1ull << 63, std::numeric_limits<std::uint64_t>::max()}) {
    Histogram h;
    h.observe(v);
    const double expected = static_cast<double>(v);
    EXPECT_DOUBLE_EQ(h.p50(), expected) << "sample " << v;
    EXPECT_DOUBLE_EQ(h.p90(), expected) << "sample " << v;
    EXPECT_DOUBLE_EQ(h.p99(), expected) << "sample " << v;
    EXPECT_DOUBLE_EQ(h.p999(), expected) << "sample " << v;
  }
  // Same contract for the log-linear latency histogram.
  for (const std::uint64_t v : std::initializer_list<std::uint64_t>{
           0, 1, 999'999, 1ull << 63, std::numeric_limits<std::uint64_t>::max()}) {
    LogLinearHistogram h;
    h.observe(v);
    const double expected = static_cast<double>(v);
    EXPECT_DOUBLE_EQ(h.p50(), expected) << "sample " << v;
    EXPECT_DOUBLE_EQ(h.p99(), expected) << "sample " << v;
    EXPECT_DOUBLE_EQ(h.p999(), expected) << "sample " << v;
  }
}

TEST(HistogramTest, QuantileAtPowerOfTwoBoundaryStaysInBucketRange) {
  // All mass exactly on a bucket's lower edge: interpolation must not
  // escape [min, max] on either side of the boundary.
  for (const std::uint64_t edge : {2ull, 1024ull, 1ull << 32, 1ull << 62}) {
    Histogram h;
    for (int i = 0; i < 10; ++i) h.observe(edge);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), static_cast<double>(edge)) << "edge " << edge;
    EXPECT_DOUBLE_EQ(h.p999(), static_cast<double>(edge)) << "edge " << edge;
  }
}

TEST(HistogramTest, BucketFloorAgreesWithBucketAssignment) {
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 2u);
  EXPECT_EQ(Histogram::bucket_floor(10), 1024u);
  EXPECT_EQ(Histogram::bucket_floor(63), 1ull << 63);
  // A sample equal to bucket_floor(k) must land in bucket k.
  for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
    Histogram h;
    h.observe(Histogram::bucket_floor(k));
    EXPECT_EQ(h.buckets()[k], 1u) << "floor of bucket " << k;
  }
}

// --------------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_NE(&reg.counter("y"), &a);
}

TEST(MetricsRegistryTest, InstrumentPointersSurviveGrowth) {
  MetricsRegistry reg;
  Counter* first = &reg.counter("first");
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  first->inc();
  EXPECT_EQ(reg.counter("first").value(), 1u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.inc(5);
  g.set(9.0);
  h.observe(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_DOUBLE_EQ(g.high_water(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&reg.counter("c"), &c);  // same instrument, still registered
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

// --------------------------------------------------------------------------
// ScopedTimer
// --------------------------------------------------------------------------

TEST(ScopedTimerTest, ChargesHistogramAndSink) {
  Histogram h;
  std::uint64_t sink = 0;
  {
    ScopedTimer timer{h, sink};
    volatile int x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(sink, 0u);
  EXPECT_EQ(h.sum(), sink);
}

TEST(ScopedTimerTest, SinkOnlyFormMatchesOldScopedCpuTimer) {
  std::uint64_t sink = 0;
  { ScopedTimer timer{sink}; }
  // Even an empty scope takes a nonzero number of wall nanoseconds on any
  // real clock; mainly we care that the sink was written exactly once.
  const std::uint64_t first = sink;
  { ScopedTimer timer{sink}; }
  EXPECT_GE(sink, first);
}

// --------------------------------------------------------------------------
// TraceRecorder
// --------------------------------------------------------------------------

// Pulls every numeric value following `"key":` out of a JSON string.
std::vector<double> extract_numbers(const std::string& json, const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::stod(json.substr(pos)));
  }
  return out;
}

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorder trace;
  EXPECT_FALSE(trace.enabled());
  trace.span("s", "cat", SimTime::millis(1), SimTime::millis(2));
  trace.instant("i", "cat", SimTime::millis(3));
  trace.counter("c", SimTime::millis(4), 1.0);
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceRecorderTest, ExportsMonotonicSimTimeMicros) {
  TraceRecorder trace;
  trace.set_enabled(true);
  // Record deliberately out of order; export must sort by ts.
  trace.instant("late", "ids", SimTime::millis(30));
  trace.span("window", "ids", SimTime::millis(10), SimTime::millis(5));
  trace.counter("queue", SimTime::millis(20), 17.0);
  EXPECT_EQ(trace.size(), 3u);

  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);

  const std::vector<double> ts = extract_numbers(json, "ts");
  ASSERT_EQ(ts.size(), 3u);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
  // ts is sim-time microseconds: 10 ms span start -> 10'000 us first.
  EXPECT_DOUBLE_EQ(ts[0], 10'000.0);
  EXPECT_DOUBLE_EQ(ts[1], 20'000.0);
  EXPECT_DOUBLE_EQ(ts[2], 30'000.0);
  const std::vector<double> dur = extract_numbers(json, "dur");
  ASSERT_EQ(dur.size(), 1u);
  EXPECT_DOUBLE_EQ(dur[0], 5'000.0);
}

TEST(TraceRecorderTest, ExportIsStructurallyValidJson) {
  TraceRecorder trace;
  trace.set_enabled(true);
  trace.span("a \"quoted\" name", "net", SimTime::nanos(1500), SimTime::nanos(500));
  trace.instant("i", "net", SimTime::seconds(1));
  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string json = os.str();

  // Braces and brackets balance and never go negative outside strings.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  // Sub-microsecond timestamps keep nanosecond precision: 1500 ns = 1.5 us.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
}

TEST(TraceRecorderTest, ClearEmptiesTheBuffer) {
  TraceRecorder trace;
  trace.set_enabled(true);
  trace.instant("i", "c", SimTime{});
  EXPECT_EQ(trace.size(), 1u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(TraceRecorderTest, EventBudgetDropsAndCounts) {
  auto& reg = MetricsRegistry::global();
  const std::uint64_t dropped_before = reg.counter("trace.dropped_events").value();

  TraceRecorder trace;
  trace.set_enabled(true);
  trace.set_event_budget(3);
  EXPECT_EQ(trace.event_budget(), 3u);
  for (int i = 0; i < 10; ++i) trace.instant("i", "c", SimTime::millis(i));
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.dropped_events(), 7u);
  EXPECT_EQ(reg.counter("trace.dropped_events").value() - dropped_before, 7u);

  // Spans and counters go through the same gate.
  trace.span("s", "c", SimTime::millis(1), SimTime::millis(1));
  trace.counter("q", SimTime::millis(2), 1.0);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.dropped_events(), 9u);

  // clear() resets both the buffer and the drop tally, so a fresh trace
  // window starts with a full budget again.
  trace.clear();
  EXPECT_EQ(trace.dropped_events(), 0u);
  trace.instant("again", "c", SimTime::millis(3));
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.dropped_events(), 0u);
}

// --------------------------------------------------------------------------
// Sampler
// --------------------------------------------------------------------------

TEST(SamplerTest, SamplesOnCadenceAndWritesGauges) {
  MetricsRegistry reg;
  net::Simulator sim;
  SamplerConfig cfg;
  cfg.period = SimTime::millis(100);
  Sampler sampler{reg, cfg};
  int calls = 0;
  sampler.add_probe("probe.value", [&calls] { return static_cast<double>(++calls); });
  sampler.start(sim);
  sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(sampler.samples_taken(), 10u);
  EXPECT_EQ(calls, 10);
  EXPECT_DOUBLE_EQ(reg.gauge("probe.value").value(), 10.0);
  EXPECT_DOUBLE_EQ(reg.gauge("probe.value").high_water(), 10.0);
}

TEST(SamplerTest, ObservesConsistentClockAtRunUntilBoundaries) {
  MetricsRegistry reg;
  net::Simulator sim;
  SamplerConfig cfg;
  cfg.period = SimTime::millis(250);
  Sampler sampler{reg, cfg};
  std::vector<SimTime> seen;
  sampler.add_probe("probe.t", [&] {
    seen.push_back(sim.now());
    return 0.0;
  });
  sampler.start(sim);

  // run_until to a boundary that is NOT a multiple of the period: ticks at
  // 250/500/750 ms fire, the 1000 ms tick stays pending, and the clock
  // still advances exactly to the boundary.
  sim.run_until(SimTime::millis(900));
  EXPECT_EQ(sim.now(), SimTime::millis(900));
  ASSERT_EQ(seen.size(), 3u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], cfg.period * static_cast<std::int64_t>(i + 1));
  }
  EXPECT_EQ(sampler.last_sample_at(), SimTime::millis(750));
  EXPECT_LE(sampler.last_sample_at(), sim.now());

  // Resuming past the next boundary fires the pending tick exactly at it.
  sim.run_until(SimTime::millis(1100));
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen.back(), SimTime::millis(1000));
  EXPECT_EQ(sim.now(), SimTime::millis(1100));
}

TEST(SamplerTest, StopsAtConfiguredHorizon) {
  MetricsRegistry reg;
  net::Simulator sim;
  SamplerConfig cfg;
  cfg.period = SimTime::millis(100);
  cfg.until = SimTime::millis(350);
  Sampler sampler{reg, cfg};
  sampler.add_probe("p", [] { return 1.0; });
  sampler.start(sim);
  // Bounded horizon: the sampler stops re-arming, so run_all terminates.
  sim.run_all();
  EXPECT_EQ(sampler.samples_taken(), 3u);  // 100, 200, 300 ms
  EXPECT_EQ(sampler.last_sample_at(), SimTime::millis(300));
}

TEST(SamplerTest, StopHaltsFutureTicks) {
  MetricsRegistry reg;
  net::Simulator sim;
  SamplerConfig cfg;
  cfg.period = SimTime::millis(100);
  cfg.until = SimTime::seconds(10);
  Sampler sampler{reg, cfg};
  sampler.add_probe("p", [] { return 1.0; });
  sampler.start(sim);
  sim.run_until(SimTime::millis(250));
  sampler.stop();
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(sampler.samples_taken(), 2u);
}

TEST(SamplerTest, RejectsNonPositivePeriod) {
  MetricsRegistry reg;
  SamplerConfig cfg;
  cfg.period = SimTime{};
  EXPECT_THROW((Sampler{reg, cfg}), std::invalid_argument);
}

TEST(SamplerTest, EmitsTraceCountersWhenTracingEnabled) {
  MetricsRegistry reg;
  net::Simulator sim;
  SamplerConfig cfg;
  cfg.period = SimTime::millis(100);
  Sampler sampler{reg, cfg};
  sampler.add_probe("traced.gauge", [] { return 5.0; });
  sampler.start(sim);

  auto& trace = TraceRecorder::global();
  trace.clear();
  trace.set_enabled(true);
  sim.run_until(SimTime::millis(200));
  trace.set_enabled(false);
  EXPECT_EQ(trace.size(), 2u);
  std::ostringstream os;
  trace.write_chrome_trace(os);
  EXPECT_NE(os.str().find("traced.gauge"), std::string::npos);
  trace.clear();
}

// --------------------------------------------------------------------------
// LogLinearHistogram + LatencyTracker
// --------------------------------------------------------------------------

TEST(LogLinearHistogramTest, ValuesBelowTwoOctavesAreExact) {
  for (std::uint64_t v = 0; v < 2 * LogLinearHistogram::kSub; ++v) {
    EXPECT_EQ(LogLinearHistogram::index_of(v), v);
    EXPECT_EQ(LogLinearHistogram::bucket_floor(v), v);
    EXPECT_EQ(LogLinearHistogram::bucket_width(v), 1u);
  }
  LogLinearHistogram h;
  h.observe(42);
  EXPECT_DOUBLE_EQ(h.p50(), 42.0);
  EXPECT_DOUBLE_EQ(h.p999(), 42.0);
}

TEST(LogLinearHistogramTest, BucketGeometryIsConsistent) {
  // Every bucket: floor lands back in the bucket, floor+width-1 stays in
  // it, and floor+width starts the next one (up to uint64 range).
  for (std::size_t i = 0; i + 1 < LogLinearHistogram::kBucketCount; ++i) {
    const std::uint64_t lo = LogLinearHistogram::bucket_floor(i);
    const std::uint64_t w = LogLinearHistogram::bucket_width(i);
    EXPECT_EQ(LogLinearHistogram::index_of(lo), i) << "bucket " << i;
    EXPECT_EQ(LogLinearHistogram::index_of(lo + w - 1), i) << "bucket " << i;
    EXPECT_EQ(LogLinearHistogram::index_of(lo + w), i + 1) << "bucket " << i;
    EXPECT_EQ(LogLinearHistogram::bucket_floor(i + 1), lo + w) << "bucket " << i;
  }
}

TEST(LogLinearHistogramTest, RelativeErrorBoundedByOneOverSub) {
  // Any single recorded value's p50 comes back within 1/kSub of itself.
  LogLinearHistogram h;
  std::uint64_t v = 1;
  for (int i = 0; i < 60; ++i, v = v * 3 + 7) {
    h.reset();
    h.observe(v);
    const double err = std::abs(h.p50() - static_cast<double>(v)) / static_cast<double>(v);
    EXPECT_LE(err, 1.0 / LogLinearHistogram::kSub) << "value " << v;
  }
}

TEST(LogLinearHistogramTest, QuantilesAreOrderedAndClamped) {
  LogLinearHistogram h;
  for (std::uint64_t v = 100; v <= 100000; v += 37) h.observe(v);
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_GE(h.p50(), static_cast<double>(h.min()));
  EXPECT_LE(h.p999(), static_cast<double>(h.max()));
  // Uniform spacing: the median should be near the midpoint within the
  // histogram's relative-error bound.
  const double mid = (100.0 + 100000.0) / 2.0;
  EXPECT_NEAR(h.p50(), mid, mid / LogLinearHistogram::kSub + 37.0);
}

TEST(LogLinearHistogramTest, TracksCountSumMinMaxMeanAndResets) {
  LogLinearHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.observe(10);
  h.observe(30);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 40u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyTrackerTest, SeriesAreNamedStableAndResettable) {
  LatencyTracker lat;
  LogLinearHistogram& a = lat.series("flight.a");
  LogLinearHistogram& b = lat.series("flight.b");
  EXPECT_NE(&a, &b);
  // Re-resolving and registering more series returns the same node.
  a.observe(5);
  for (int i = 0; i < 64; ++i) lat.series("flight.fill." + std::to_string(i));
  EXPECT_EQ(&lat.series("flight.a"), &a);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(lat.all().size(), 66u);

  lat.reset();
  EXPECT_EQ(a.count(), 0u);           // zeroed...
  EXPECT_EQ(lat.all().size(), 66u);   // ...but registrations survive
  EXPECT_EQ(&lat.series("flight.a"), &a);
}

// --------------------------------------------------------------------------
// Snapshot writer
// --------------------------------------------------------------------------

TEST(SnapshotTest, EmitsAllSectionsWithValues) {
  MetricsRegistry reg;
  reg.counter("net.packets").inc(123);
  reg.gauge("queue.depth").set(4.5);
  reg.histogram("lat.ns").observe(1000);
  reg.histogram("lat.ns").observe(3000);

  std::ostringstream os;
  write_json_snapshot(reg, os);
  const std::string json = os.str();

  // The default writer now emits the v2 schema: everything v1 had, plus a
  // p999 per histogram and a top-level latency section.
  EXPECT_NE(json.find("\"schema\": \"ddoshield-metrics-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"net.packets\": 123"), std::string::npos);
  EXPECT_NE(json.find("\"queue.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"high_water\": 4.5"), std::string::npos);
  EXPECT_NE(json.find("\"lat.ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 4000"), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);

  // Structural validity: balanced braces outside strings.
  int depth = 0;
  bool in_string = false;
  for (const char c : json) {
    if (c == '"') in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(SnapshotTest, EmptyRegistrySnapshotIsValid) {
  MetricsRegistry reg;
  std::ostringstream os;
  write_json_snapshot(reg, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {"), std::string::npos);
}

// The fixture behind tests/golden/metrics_snapshot_v1.json. Values are
// chosen to exercise every section: an escaped name, a negative gauge,
// and a histogram whose quantiles need log interpolation.
void fill_golden_fixture_registry(MetricsRegistry& reg) {
  reg.counter("net.link.tx_packets").inc(123456);
  reg.counter("net.link.dropped_packets").inc(789);
  reg.counter("weird\"name\\with.escapes").inc(1);
  reg.gauge("ids.queue_depth").set(7.0);
  reg.gauge("ids.queue_depth").set(2.5);
  reg.gauge("net.backlog").set(-1.25);
  auto& h = reg.histogram("ids.window_infer_ns");
  for (std::uint64_t v : {0ull, 1ull, 2ull, 1023ull, 1024ull, 1ull << 20}) h.observe(v);
  reg.histogram("empty.histogram");
}

// Pins the exact bytes of the "ddoshield-metrics-v1" schema. The default
// writer moved to v2, but v1 stays requestable and byte-stable — existing
// consumers of old BENCH_*.json snapshots rely on it. If this test fails
// because the format intentionally changed, bump the schema string and
// regenerate the golden file from the failure output.
TEST(SnapshotTest, MatchesGoldenFile) {
  MetricsRegistry reg;
  fill_golden_fixture_registry(reg);
  std::ostringstream os;
  write_json_snapshot(reg, os, SnapshotVersion::kV1);

  const std::string path = std::string{DDOS_TEST_DATA_DIR} + "/golden/metrics_snapshot_v1.json";
  std::ifstream in{path};
  ASSERT_TRUE(in.is_open()) << "missing golden file: " << path;
  std::ostringstream golden;
  golden << in.rdbuf();

  EXPECT_EQ(os.str(), golden.str());
}

// Same fixture, v2 writer with a latency tracker attached: pins the v2
// bytes the way the v1 golden pins v1.
TEST(SnapshotTest, MatchesGoldenFileV2) {
  MetricsRegistry reg;
  fill_golden_fixture_registry(reg);
  LatencyTracker lat;
  auto& series = lat.series("flight.net.queue_ns");
  for (std::uint64_t v : {0ull, 63ull, 64ull, 1000ull, 1ull << 20}) series.observe(v);
  lat.series("flight.empty_series");

  std::ostringstream os;
  write_json_snapshot(reg, os, SnapshotVersion::kV2, &lat);

  const std::string path = std::string{DDOS_TEST_DATA_DIR} + "/golden/metrics_snapshot_v2.json";
  std::ifstream in{path};
  ASSERT_TRUE(in.is_open()) << "missing golden file: " << path;
  std::ostringstream golden;
  golden << in.rdbuf();

  EXPECT_EQ(os.str(), golden.str());
}

// --------------------------------------------------------------------------
// Snapshot reader: v1 and v2 round-trip byte-identically
// --------------------------------------------------------------------------

TEST(SnapshotTest, ReaderRoundTripsV1Bytes) {
  MetricsRegistry reg;
  fill_golden_fixture_registry(reg);
  std::ostringstream os;
  write_json_snapshot(reg, os, SnapshotVersion::kV1);
  const std::string original = os.str();

  SnapshotData data;
  std::istringstream in{original};
  ASSERT_TRUE(read_json_snapshot(in, data));
  EXPECT_EQ(data.schema, "ddoshield-metrics-v1");
  EXPECT_EQ(data.counters.at("net.link.tx_packets"), 123456u);
  EXPECT_EQ(data.counters.at("weird\"name\\with.escapes"), 1u);
  EXPECT_DOUBLE_EQ(data.gauges.at("net.backlog").value, -1.25);
  EXPECT_DOUBLE_EQ(data.gauges.at("ids.queue_depth").high_water, 7.0);
  EXPECT_EQ(data.histograms.at("ids.window_infer_ns").count, 6u);

  // Re-serializing the parsed structure reproduces the input exactly:
  // %.17g is injective on doubles, so no information is lost in transit.
  std::ostringstream rewritten;
  write_json_snapshot(data, rewritten);
  EXPECT_EQ(rewritten.str(), original);
}

TEST(SnapshotTest, ReaderRoundTripsV2Bytes) {
  MetricsRegistry reg;
  fill_golden_fixture_registry(reg);
  LatencyTracker lat;
  auto& series = lat.series("flight.net.queue_ns");
  for (std::uint64_t v : {1ull, 100ull, 10000ull}) series.observe(v);

  std::ostringstream os;
  write_json_snapshot(reg, os, SnapshotVersion::kV2, &lat);
  const std::string original = os.str();

  SnapshotData data;
  std::istringstream in{original};
  ASSERT_TRUE(read_json_snapshot(in, data));
  EXPECT_EQ(data.schema, "ddoshield-metrics-v2");
  EXPECT_EQ(data.latency.at("flight.net.queue_ns").count, 3u);
  EXPECT_GT(data.histograms.at("ids.window_infer_ns").p999, 0.0);

  std::ostringstream rewritten;
  write_json_snapshot(data, rewritten);
  EXPECT_EQ(rewritten.str(), original);
}

TEST(SnapshotTest, ReaderRejectsMalformedInput) {
  for (const char* bad : {"", "{", "{\"schema\": \"nope\"", "not json at all",
                          "{\"schema\": \"ddoshield-metrics-v1\", \"counters\": {"}) {
    SnapshotData data;
    std::istringstream in{bad};
    EXPECT_FALSE(read_json_snapshot(in, data)) << "accepted: " << bad;
  }
}

// --------------------------------------------------------------------------
// Wiring: the net layer charges the global registry
// --------------------------------------------------------------------------

TEST(WiringTest, SimulatorChargesGlobalCounters) {
  auto& reg = MetricsRegistry::global();
  const std::uint64_t scheduled_before = reg.counter("net.sim.events_scheduled").value();
  const std::uint64_t executed_before = reg.counter("net.sim.events_executed").value();
  const std::uint64_t cancelled_before = reg.counter("net.sim.events_cancelled").value();

  net::Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(SimTime::millis(i), [] {});
  net::EventHandle dropped = sim.schedule(SimTime::millis(10), [] {});
  dropped.cancel();
  sim.run_all();

  EXPECT_EQ(reg.counter("net.sim.events_scheduled").value() - scheduled_before, 6u);
  EXPECT_EQ(reg.counter("net.sim.events_executed").value() - executed_before, 5u);
  EXPECT_EQ(reg.counter("net.sim.events_cancelled").value() - cancelled_before, 1u);
  EXPECT_EQ(sim.queue_high_water(), 6u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace ddoshield::obs
