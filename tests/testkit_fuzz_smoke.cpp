// fuzz_smoke: the seeded scenario fuzzer across 25 fixed seeds with every
// invariant armed, plus the replay proof — re-running a seed produces a
// byte-identical event log.
//
// Each seed expands into a randomized topology, benign/Mirai traffic mix,
// and fault schedule, and drives the real Testbed/TcpHost/RealTimeIds
// pipeline. CI runs this suite both plain and under ASan/UBSan.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>

#include "features/schema.hpp"
#include "ml/random_forest.hpp"
#include "testkit/fuzzer.hpp"
#include "util/rng.hpp"

namespace ddoshield::testkit {
namespace {

// A deliberately tiny forest trained on separable synthetic rows: the fuzz
// runs exercise the IDS window/inference plumbing, not detection quality.
const ml::Classifier& tiny_model() {
  static ml::RandomForest* model = [] {
    ml::RandomForestConfig cfg;
    cfg.n_estimators = 5;
    cfg.tree.max_depth = 6;
    cfg.max_samples_per_tree = 200;
    auto* rf = new ml::RandomForest{cfg};

    ml::DesignMatrix x{features::kFeatureCount};
    std::vector<int> y;
    util::Rng rng{42};
    for (int i = 0; i < 400; ++i) {
      const int label = i % 2;
      std::array<double, features::kFeatureCount> row;
      for (auto& v : row) v = rng.uniform() + 2.0 * label;
      x.add_row(row);
      y.push_back(label);
    }
    rf->fit(x, y);
    return rf;
  }();
  return *model;
}

FuzzOptions smoke_options() {
  FuzzOptions opts;
  opts.ids_model = &tiny_model();
  // CI's mitigation fuzz configuration runs the same seeds with the closed
  // detect→defend loop active, so enforcement churn (rule install/expiry,
  // SYN cookies, quarantine) is fuzzed under the same invariants. An empty
  // value counts as unset so a matrix-driven env var can expand to ''.
  const char* mitigate_env = std::getenv("DDOSHIELD_FUZZ_MITIGATE");
  opts.enable_mitigation = mitigate_env != nullptr && mitigate_env[0] != '\0';
  return opts;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, InvariantsHoldEndToEnd) {
  Fuzzer fuzzer{smoke_options()};
  const FuzzResult result = fuzzer.run(GetParam());

  EXPECT_TRUE(result.ok()) << result.invariants.summary();
  EXPECT_GT(result.packets_tapped, 0u) << "scenario generated no victim traffic";
  EXPECT_GT(result.invariants.packets_checked, 0u);
  EXPECT_GT(result.ids_windows, 0u);
  EXPECT_FALSE(result.log.empty());
}

INSTANTIATE_TEST_SUITE_P(TwentyFiveSeeds, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(1, 26));

// The replay proof: the acceptance bar for the whole harness. Two runs of
// the same seed — fresh Testbed, fresh Simulator, same process-global
// metrics registry — must produce byte-identical logs.
TEST(FuzzReplay, SameSeedReplaysByteIdentical) {
  Fuzzer fuzzer{smoke_options()};
  for (const std::uint64_t seed : {7ull, 13ull, 21ull}) {
    const FuzzResult first = fuzzer.run(seed);
    const FuzzResult second = fuzzer.run(seed);
    ASSERT_FALSE(first.log.empty());
    ASSERT_EQ(first.log.joined(), second.log.joined()) << "seed " << seed;
    EXPECT_EQ(first.log.digest(), second.log.digest());
    EXPECT_EQ(first.events_executed, second.events_executed);
    EXPECT_EQ(first.packets_tapped, second.packets_tapped);
  }
}

// Regression pins for bugs the fuzzer surfaced on first contact, kept as
// named tests so the seeds stay covered even if the 25-seed range moves:
//  * seeds 1/24: TelemetrySensor dialed synchronously inside deploy(),
//    putting SYNs on the wire before the simulator ran — observers missed
//    the handshake ("data before handshake") and the link conservation
//    baseline was snapshot with packets already in flight;
//  * seeds 18/22: endpoints that abort (device crash) keep answering the
//    peer's retransmissions with RSTs — legal TCP the first checker
//    version misread as "segment after RST".
class FuzzRegressionSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRegressionSeeds, OnceFailingSeedStaysGreen) {
  Fuzzer fuzzer{smoke_options()};
  const FuzzResult result = fuzzer.run(GetParam());
  EXPECT_TRUE(result.ok()) << result.invariants.summary();
}

INSTANTIATE_TEST_SUITE_P(SurfacedBugs, FuzzRegressionSeeds,
                         ::testing::Values(1ull, 18ull, 22ull, 24ull));

// Always-on (env-independent) coverage of the mitigation path: the same
// invariants hold with enforcement active, and the event log — now also
// carrying mitigation action lines — still replays byte for byte.
class FuzzMitigation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzMitigation, InvariantsHoldAndReplayIsByteIdentical) {
  FuzzOptions opts;
  opts.ids_model = &tiny_model();
  opts.enable_mitigation = true;
  Fuzzer fuzzer{opts};

  const FuzzResult first = fuzzer.run(GetParam());
  EXPECT_TRUE(first.ok()) << first.invariants.summary();
  EXPECT_GT(first.ids_windows, 0u);

  const FuzzResult second = fuzzer.run(GetParam());
  ASSERT_EQ(first.log.joined(), second.log.joined()) << "seed " << GetParam();
  EXPECT_EQ(first.mitigation_actions, second.mitigation_actions);
}

INSTANTIATE_TEST_SUITE_P(ClosedLoop, FuzzMitigation, ::testing::Values(7ull, 13ull));

TEST(FuzzReplay, DifferentSeedsDiverge) {
  Fuzzer fuzzer{smoke_options()};
  const FuzzResult a = fuzzer.run(1001);
  const FuzzResult b = fuzzer.run(1002);
  EXPECT_NE(a.log.digest(), b.log.digest());
}

TEST(FuzzScenarioGeneration, IsPureFunctionOfSeed) {
  const core::Scenario a = Fuzzer::generate_scenario(77);
  const core::Scenario b = Fuzzer::generate_scenario(77);
  EXPECT_EQ(a.device_count, b.device_count);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.attacks.size(), b.attacks.size());
  for (std::size_t i = 0; i < a.attacks.size(); ++i) {
    EXPECT_EQ(a.attacks[i].start, b.attacks[i].start);
    EXPECT_EQ(a.attacks[i].type, b.attacks[i].type);
  }
  EXPECT_EQ(a.topology.access_link.rate_bps, b.topology.access_link.rate_bps);

  // And the knobs actually vary across seeds.
  bool any_difference = false;
  for (std::uint64_t s = 1; s <= 10 && !any_difference; ++s) {
    const core::Scenario other = Fuzzer::generate_scenario(s);
    any_difference = other.device_count != a.device_count || other.duration != a.duration;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ddoshield::testkit
