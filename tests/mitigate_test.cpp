// Tests for the closed-loop mitigation subsystem: EdgeFilter units (ACL,
// token bucket, protected-destination gate), Node ingress-filter drop
// accounting, and the end-to-end survival experiment — a SYN flood run with
// and without mitigation, asserting the defended run keeps strictly more
// benign connections alive at lower tail latency, and that same-seed
// defended runs produce byte-identical action logs.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>

#include "core/pipeline.hpp"
#include "core/testbed.hpp"
#include "features/schema.hpp"
#include "mitigate/mitigation.hpp"
#include "ml/classifier.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/survival.hpp"
#include "util/byte_buffer.hpp"

namespace ddoshield::mitigate {
namespace {

using util::SimTime;

net::Packet make_packet(net::Ipv4Address src, net::Ipv4Address dst) {
  net::Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = net::IpProto::kTcp;
  pkt.src_port = 5555;
  pkt.dst_port = 80;
  return pkt;
}

// --------------------------------------------------------------------------
// EdgeFilter
// --------------------------------------------------------------------------

TEST(EdgeFilterTest, AclDropsOnlyTrafficToTheProtectedDestination) {
  net::Simulator sim;
  const net::Ipv4Address victim{10, 0, 0, 100};
  const net::Ipv4Address other{10, 0, 0, 50};
  const net::Ipv4Address bot{10, 0, 0, 7};
  EdgeFilter filter{sim, victim};

  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kAccept);

  filter.install_acl(bot.bits());
  EXPECT_EQ(filter.acl_rules(), 1u);
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kDropAcl);
  // Same source to any other destination passes: the rule guards the edge
  // in front of the victim, not the whole fabric.
  EXPECT_EQ(filter.on_packet(make_packet(bot, other)), net::FilterVerdict::kAccept);
  // Other sources to the victim pass.
  EXPECT_EQ(filter.on_packet(make_packet(other, victim)), net::FilterVerdict::kAccept);

  filter.remove_acl(bot.bits());
  EXPECT_EQ(filter.acl_rules(), 0u);
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kAccept);
}

TEST(EdgeFilterTest, TokenBucketRefillsOnSimulatedTime) {
  net::Simulator sim;
  const net::Ipv4Address victim{10, 0, 0, 100};
  const net::Ipv4Address bot{10, 0, 0, 7};
  EdgeFilter filter{sim, victim};

  // 10 packets/s, burst of 2: two pass immediately, the third drops.
  filter.install_limit(bot.bits(), 10.0, 2.0);
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kAccept);
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kAccept);
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kDropRateLimit);

  // 100 ms at 10 pps refills exactly one token.
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kAccept);
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kDropRateLimit);

  // A long idle period caps the bucket at its burst, not unbounded credit.
  sim.run_until(SimTime::seconds(60));
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kAccept);
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kAccept);
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kDropRateLimit);

  filter.remove_limit(bot.bits());
  EXPECT_EQ(filter.on_packet(make_packet(bot, victim)), net::FilterVerdict::kAccept);
}

TEST(NodeIngressFilterTest, DropsAreCountedPerNodeAndGlobally) {
  net::Network net;
  net::Node& a = net.add_node("a", net::Ipv4Address{10, 0, 0, 1});
  net::Node& b = net.add_node("b", net::Ipv4Address{10, 0, 0, 2});
  net.add_link(a, b, net::LinkConfig{});
  a.set_default_route(0);
  b.set_default_route(0);

  EdgeFilter filter{net.simulator(), b.address()};
  filter.install_acl(a.address().bits());
  b.set_ingress_filter(&filter);

  auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t acl_before = reg.counter("net.acl_dropped").value();

  std::uint64_t received = 0;
  b.add_tap([&](const net::Packet&, net::TapDirection dir) {
    if (dir == net::TapDirection::kReceived) ++received;
  });
  for (int i = 0; i < 5; ++i) a.send(make_packet(a.address(), b.address()));
  net.simulator().run_all();

  EXPECT_EQ(b.stats().dropped_acl, 5u);
  EXPECT_EQ(b.stats().dropped_ratelimit, 0u);
  EXPECT_EQ(reg.counter("net.acl_dropped").value() - acl_before, 5u);
  EXPECT_EQ(received, 0u) << "filtered packets must not reach taps or the stack";

  b.set_ingress_filter(nullptr);
}

// --------------------------------------------------------------------------
// Action log formatting
// --------------------------------------------------------------------------

TEST(ActionLogTest, LinesAreIntegerOnlyAndStable) {
  Action a;
  a.t_ns = 1'500'000'000;
  a.window_index = 3;
  a.type = ActionType::kAclInstall;
  a.src_addr = net::Ipv4Address{10, 0, 0, 7}.bits();
  a.arg = 10'000'000'000ull;
  EXPECT_EQ(a.to_line(),
            "t=1500000000 mitigate action=acl_install window=3 src=10.0.0.7 arg=10000000000");

  ActionLog log;
  log.append(a);
  a.type = ActionType::kAclExpire;
  log.append(a);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.lines().size(), 2u);
  EXPECT_NE(log.joined().find("acl_expire"), std::string::npos);
}

// --------------------------------------------------------------------------
// End-to-end survival under a SYN flood
// --------------------------------------------------------------------------

// Deterministic window-rule classifier: flags every row of a window whose
// SYN-without-ACK ratio is flood-like. Detection quality is not under test
// here — the controller's volume threshold does the per-source separation.
class SynRuleModel : public ml::Classifier {
 public:
  std::string name() const override { return "syn-rule"; }
  void fit(const ml::DesignMatrix&, const std::vector<int>&) override {}
  int predict(std::span<const double> row) const override {
    return row[features::kWinSynNoAckRatio] > 0.3 ? 1 : 0;
  }
  bool trained() const override { return true; }
  void save(util::ByteWriter&) const override {}
  void load(util::ByteReader&) override {}
  std::uint64_t parameter_bytes() const override { return 0; }
  std::uint64_t inference_scratch_bytes() const override { return 0; }
};

core::Scenario syn_flood_scenario() {
  core::Scenario s;
  s.seed = 17;
  s.device_count = 8;
  // Half the fleet is infectable: the clean half's benign traffic is what
  // mitigation is supposed to keep alive.
  s.vulnerable_fraction = 0.5;
  s.duration = SimTime::seconds(12);
  s.infection_start = SimTime::millis(500);

  core::AttackBurst burst;
  burst.start = SimTime::seconds(3);
  burst.type = botnet::AttackType::kSynFlood;
  burst.duration = SimTime::seconds(6);
  // 4 bots x 20k pps x 40 B SYNs ~ 25.6 Mbit/s against the 8 Mbit/s
  // uplink: a 3.2x overload, so benign SYNs drown in the drop-tail queue.
  burst.packets_per_second_per_bot = 20000.0;
  burst.spoof_sources = false;  // bot-addressed, so edge rules can bite
  s.attacks.push_back(burst);

  // Narrow uplink: the flood congests the victim's edge, so router-side
  // filtering visibly restores benign latency, not just the backlog.
  s.topology.uplink.rate_bps = 8e6;
  return s;
}

struct SurvivalRun {
  obs::SurvivalReport report;
  std::string action_log;
  std::uint64_t acl_dropped = 0;
  std::uint64_t ratelimit_dropped = 0;
  std::uint64_t cookies_sent = 0;
  std::uint64_t actions = 0;
};

SurvivalRun run_syn_flood(bool mitigate) {
  SynRuleModel model;
  core::Testbed bed{syn_flood_scenario()};
  bed.deploy();

  ids::IdsConfig ids_cfg;
  ids_cfg.window = SimTime::millis(500);
  bed.deploy_ids(model, ids_cfg);
  if (mitigate) bed.enable_mitigation();

  auto& meter = obs::SurvivalMeter::global();
  meter.reset();
  meter.set_enabled(true);
  bed.run();
  meter.set_enabled(false);

  SurvivalRun out;
  out.report = meter.report();
  if (bed.mitigation() != nullptr) {
    out.action_log = bed.mitigation()->action_log().joined();
    out.actions = bed.mitigation()->action_log().size();
  }
  out.acl_dropped = bed.topology().router->stats().dropped_acl;
  out.ratelimit_dropped = bed.topology().router->stats().dropped_ratelimit;
  out.cookies_sent = bed.topology().tserver->tcp().syn_cookies_sent();
  return out;
}

TEST(SurvivalUnderAttackTest, MitigationRaisesConnectSuccessAndLowersTailLatency) {
  const SurvivalRun off = run_syn_flood(false);
  const SurvivalRun on = run_syn_flood(true);

  // The undefended run must actually be hurt for the comparison to mean
  // anything: connects that never complete (drowned SYNs still retrying at
  // run end) and a tail latency in congested-queue territory.
  ASSERT_GT(off.report.connects_attempted, 0u);
  ASSERT_LT(off.report.connects_succeeded, off.report.connects_attempted)
      << "flood did not hurt the baseline: " << off.report.summary();
  EXPECT_GT(off.report.latency_p99_ns, 500'000'000u)  // > 500 ms
      << "flood did not congest the uplink: " << off.report.summary();
  EXPECT_EQ(off.actions, 0u);
  EXPECT_EQ(off.acl_dropped + off.ratelimit_dropped, 0u);
  EXPECT_EQ(off.cookies_sent, 0u);

  // The defended run enforces: actions were taken and packets were dropped
  // at the edge / absorbed statelessly.
  EXPECT_GT(on.actions, 0u);
  EXPECT_GT(on.acl_dropped + on.ratelimit_dropped, 0u);
  EXPECT_GT(on.cookies_sent, 0u);

  // Survival: strictly higher benign connection success, lower benign p99.
  EXPECT_GT(on.report.connect_success_rate(), off.report.connect_success_rate())
      << "off: " << off.report.summary() << "\non: " << on.report.summary();
  ASSERT_GT(off.report.latency_samples, 0u);
  ASSERT_GT(on.report.latency_samples, 0u);
  EXPECT_LT(on.report.latency_p99_ns, off.report.latency_p99_ns)
      << "off: " << off.report.summary() << "\non: " << on.report.summary();
}

TEST(SurvivalUnderAttackTest, SameSeedDefendedRunsReplayByteIdentical) {
  const SurvivalRun first = run_syn_flood(true);
  const SurvivalRun second = run_syn_flood(true);
  ASSERT_FALSE(first.action_log.empty());
  EXPECT_EQ(first.action_log, second.action_log);
  EXPECT_EQ(first.actions, second.actions);
  EXPECT_EQ(first.acl_dropped, second.acl_dropped);
  EXPECT_EQ(first.ratelimit_dropped, second.ratelimit_dropped);
  EXPECT_EQ(first.cookies_sent, second.cookies_sent);
  EXPECT_EQ(first.report.connects_succeeded, second.report.connects_succeeded);
  EXPECT_EQ(first.report.benign_bytes, second.report.benign_bytes);
}

// With every mechanism switched off the controller observes but never
// enforces: no actions, no drops, no cookies — the "off preserves behavior"
// contract at the config level.
TEST(SurvivalUnderAttackTest, AllMechanismsDisabledTakesNoActions) {
  SynRuleModel model;
  core::Testbed bed{syn_flood_scenario()};
  bed.deploy();
  ids::IdsConfig ids_cfg;
  ids_cfg.window = SimTime::millis(500);
  bed.deploy_ids(model, ids_cfg);

  MitigationConfig cfg;
  cfg.enable_rate_limit = false;
  cfg.enable_acl = false;
  cfg.enable_syn_cookies = false;
  cfg.enable_quarantine = false;
  auto& controller = bed.enable_mitigation(cfg);
  bed.run();

  EXPECT_EQ(controller.action_log().size(), 0u);
  EXPECT_EQ(bed.topology().router->stats().dropped_acl, 0u);
  EXPECT_EQ(bed.topology().router->stats().dropped_ratelimit, 0u);
  EXPECT_EQ(bed.topology().tserver->tcp().syn_cookies_sent(), 0u);
  EXPECT_GT(controller.summary().windows_processed, 0u)
      << "the verdict bus should still deliver windows";
}

}  // namespace
}  // namespace ddoshield::mitigate
