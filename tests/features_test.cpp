// Tests for the feature schema, per-window statistics, and the aggregator.
#include <gtest/gtest.h>

#include <set>

#include "capture/dataset.hpp"
#include "features/extractor.hpp"
#include "features/schema.hpp"
#include "features/window_stats.hpp"
#include "util/rng.hpp"

namespace ddoshield::features {
namespace {

using capture::PacketRecord;
using util::SimTime;

PacketRecord tcp_packet(std::int64_t t_ms, std::uint32_t src, std::uint16_t sport,
                        std::uint16_t dport, std::uint8_t flags, std::uint32_t payload,
                        std::uint32_t seq = 0,
                        net::TrafficOrigin origin = net::TrafficOrigin::kHttp) {
  PacketRecord r;
  r.timestamp = SimTime::millis(t_ms);
  r.src_addr = src;
  r.dst_addr = net::Ipv4Address(10, 0, 1, 1).bits();
  r.src_port = sport;
  r.dst_port = dport;
  r.protocol = 6;
  r.tcp_flags = flags;
  r.seq = seq;
  r.payload_bytes = payload;
  r.wire_bytes = payload + 40;
  r.origin = origin;
  r.label = net::traffic_class_of(origin);
  return r;
}

PacketRecord udp_packet(std::int64_t t_ms, std::uint16_t dport, std::uint32_t payload) {
  PacketRecord r;
  r.timestamp = SimTime::millis(t_ms);
  r.src_addr = net::Ipv4Address(10, 1, 0, 10).bits();
  r.dst_addr = net::Ipv4Address(10, 0, 1, 1).bits();
  r.src_port = 40000;
  r.dst_port = dport;
  r.protocol = 17;
  r.payload_bytes = payload;
  r.wire_bytes = payload + 28;
  r.origin = net::TrafficOrigin::kMiraiUdpFlood;
  r.label = net::TrafficClass::kMalicious;
  return r;
}

// --------------------------------------------------------------------------
// Schema
// --------------------------------------------------------------------------

TEST(SchemaTest, NamesAlignWithConstants) {
  EXPECT_EQ(feature_name(kTimestamp), "timestamp_s");
  EXPECT_EQ(feature_name(kSrcAddr), "src_addr");
  EXPECT_EQ(feature_name(kPayloadBytes), "payload_bytes");
  EXPECT_EQ(feature_name(kWinPacketCount), "win_packet_count");
  EXPECT_EQ(feature_name(kWinUdpFraction), "win_udp_fraction");
  EXPECT_EQ(feature_names().size(), kFeatureCount);
  EXPECT_THROW(feature_name(kFeatureCount), std::out_of_range);
}

TEST(SchemaTest, StreamingOrderIsAPermutation) {
  const auto order = streaming_column_order();
  ASSERT_EQ(order.size(), kFeatureCount);
  std::set<std::size_t> seen{order.begin(), order.end()};
  EXPECT_EQ(seen.size(), kFeatureCount);
  // Timestamp leads in both layouts; the blocks differ internally.
  EXPECT_EQ(order[0], kTimestamp);
  bool any_moved = false;
  for (std::size_t i = 0; i < kFeatureCount; ++i) any_moved |= order[i] != i;
  EXPECT_TRUE(any_moved);
}

TEST(SchemaTest, ToStreamingOrderPermutesValues) {
  FeatureRow row{};
  for (std::size_t i = 0; i < kFeatureCount; ++i) row[i] = static_cast<double>(i);
  const FeatureRow streamed = to_streaming_order(row);
  const auto order = streaming_column_order();
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    EXPECT_DOUBLE_EQ(streamed[i], static_cast<double>(order[i]));
  }
}

// --------------------------------------------------------------------------
// Basic features
// --------------------------------------------------------------------------

TEST(BasicFeaturesTest, ValuesAndNormalisation) {
  const auto r = tcp_packet(2500, net::Ipv4Address(10, 0, 0, 7).bits(), 50000, 80,
                            net::TcpFlags::kSyn, 444);
  FeatureRow row{};
  fill_basic_features(r, row);
  EXPECT_DOUBLE_EQ(row[kTimestamp], 2.5);
  EXPECT_NEAR(row[kSrcAddr], net::Ipv4Address(10, 0, 0, 7).bits() / 4294967296.0, 1e-12);
  EXPECT_DOUBLE_EQ(row[kProtoIsTcp], 1.0);
  EXPECT_NEAR(row[kSrcPort], 50000.0 / 65535.0, 1e-12);
  EXPECT_NEAR(row[kDstPort], 80.0 / 65535.0, 1e-12);
  EXPECT_DOUBLE_EQ(row[kPayloadBytes], 444.0);
}

// --------------------------------------------------------------------------
// Window statistics
// --------------------------------------------------------------------------

TEST(WindowStatsTest, EmptyWindowIsAllZero) {
  const WindowStats stats = compute_window_stats({}, SimTime::seconds(1));
  EXPECT_EQ(stats.packet_count, 0u);
  EXPECT_EQ(stats.byte_rate, 0.0);
  EXPECT_EQ(stats.dst_port_entropy, 0.0);
}

TEST(WindowStatsTest, RejectsNonPositiveWindow) {
  EXPECT_THROW(compute_window_stats({}, SimTime::seconds(0)), std::invalid_argument);
}

TEST(WindowStatsTest, PacketCountAndByteRate) {
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 10; ++i) {
    packets.push_back(tcp_packet(i, 1, 1000, 80, net::TcpFlags::kAck, 60));  // 100 wire
  }
  const WindowStats stats = compute_window_stats(packets, SimTime::seconds(1));
  EXPECT_EQ(stats.packet_count, 10u);
  EXPECT_DOUBLE_EQ(stats.byte_rate, 1000.0);  // 10 x 100 bytes / 1 s
  EXPECT_DOUBLE_EQ(stats.mean_payload, 60.0);
}

TEST(WindowStatsTest, DstPortEntropyUniformVsConcentrated) {
  std::vector<PacketRecord> uniform, focused;
  for (int i = 0; i < 64; ++i) {
    uniform.push_back(udp_packet(i, static_cast<std::uint16_t>(9000 + i), 100));
    focused.push_back(udp_packet(i, 9000, 100));
  }
  const auto u = compute_window_stats(uniform, SimTime::seconds(1));
  const auto f = compute_window_stats(focused, SimTime::seconds(1));
  EXPECT_NEAR(u.dst_port_entropy, 6.0, 1e-9);  // log2(64)
  EXPECT_EQ(f.dst_port_entropy, 0.0);
  EXPECT_GT(u.dst_port_entropy, f.dst_port_entropy);
}

TEST(WindowStatsTest, SynNoAckRatioCountsOnlyBareSyns) {
  std::vector<PacketRecord> packets;
  packets.push_back(tcp_packet(0, 1, 1000, 80, net::TcpFlags::kSyn, 0));  // counts
  packets.push_back(
      tcp_packet(1, 1, 80, 1000, net::TcpFlags::kSyn | net::TcpFlags::kAck, 0));  // no
  packets.push_back(tcp_packet(2, 1, 1000, 80, net::TcpFlags::kAck, 100));        // no
  packets.push_back(tcp_packet(3, 2, 2000, 80, net::TcpFlags::kSyn, 0));          // counts
  const auto stats = compute_window_stats(packets, SimTime::seconds(1));
  EXPECT_DOUBLE_EQ(stats.syn_no_ack_ratio, 0.5);
}

TEST(WindowStatsTest, SynRatioZeroWithoutTcp) {
  std::vector<PacketRecord> packets{udp_packet(0, 9000, 100)};
  const auto stats = compute_window_stats(packets, SimTime::seconds(1));
  EXPECT_EQ(stats.syn_no_ack_ratio, 0.0);
  EXPECT_DOUBLE_EQ(stats.udp_fraction, 1.0);
}

TEST(WindowStatsTest, ShortLivedFlowsCountsSmallFlows) {
  std::vector<PacketRecord> packets;
  // One busy flow: 5 packets.
  for (int i = 0; i < 5; ++i) {
    packets.push_back(tcp_packet(i, 1, 1000, 80, net::TcpFlags::kAck, 10));
  }
  // Three one-packet flows.
  for (int i = 0; i < 3; ++i) {
    packets.push_back(
        tcp_packet(10 + i, 2, static_cast<std::uint16_t>(5000 + i), 80, net::TcpFlags::kSyn, 0));
  }
  const auto stats = compute_window_stats(packets, SimTime::seconds(1));
  EXPECT_DOUBLE_EQ(stats.short_lived_flows, 3.0);
}

TEST(WindowStatsTest, ReferenceCountersMatchFlatCountersBitForBit) {
  // A mixed window exercising every counter: repeated flows, one-packet
  // flows, bare SYNs (some past the repeated-attempts threshold), UDP with
  // spread and concentrated ports, several source addresses.
  std::vector<PacketRecord> packets;
  util::Rng rng{99};
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.uniform_int(1, 40));
    const auto sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 1024 + 30));
    if (i % 3 == 0) {
      packets.push_back(udp_packet(i, static_cast<std::uint16_t>(rng.uniform_int(9000, 9040)),
                                   static_cast<std::uint32_t>(rng.uniform_int(0, 500))));
    } else {
      const std::uint8_t flags =
          i % 5 == 0 ? net::TcpFlags::kSyn : static_cast<std::uint8_t>(net::TcpFlags::kAck);
      packets.push_back(tcp_packet(i, src, sport, 80, flags,
                                   static_cast<std::uint32_t>(rng.uniform_int(0, 900)),
                                   static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 30))));
    }
  }

  ASSERT_FALSE(reference_window_counters());
  const WindowStats flat = compute_window_stats(packets, SimTime::seconds(1));
  set_reference_window_counters(true);
  const WindowStats reference = compute_window_stats(packets, SimTime::seconds(1));
  set_reference_window_counters(false);

  // The flat counters sort before summing entropy precisely so the two
  // implementations agree bit for bit, not just within a tolerance.
  EXPECT_EQ(reference.packet_count, flat.packet_count);
  EXPECT_EQ(reference.byte_rate, flat.byte_rate);
  EXPECT_EQ(reference.dst_port_entropy, flat.dst_port_entropy);
  EXPECT_EQ(reference.src_addr_entropy, flat.src_addr_entropy);
  EXPECT_EQ(reference.syn_no_ack_ratio, flat.syn_no_ack_ratio);
  EXPECT_EQ(reference.short_lived_flows, flat.short_lived_flows);
  EXPECT_EQ(reference.repeated_attempts, flat.repeated_attempts);
  EXPECT_EQ(reference.seq_variance_log, flat.seq_variance_log);
  EXPECT_EQ(reference.mean_payload, flat.mean_payload);
  EXPECT_EQ(reference.udp_fraction, flat.udp_fraction);
}

TEST(WindowStatsTest, RepeatedAttemptsNeedThreeSyns) {
  std::vector<PacketRecord> packets;
  for (int i = 0; i < 3; ++i) {
    packets.push_back(
        tcp_packet(i, 7, static_cast<std::uint16_t>(1000 + i), 80, net::TcpFlags::kSyn, 0));
  }
  packets.push_back(tcp_packet(5, 8, 2000, 80, net::TcpFlags::kSyn, 0));  // only one
  const auto stats = compute_window_stats(packets, SimTime::seconds(1));
  EXPECT_DOUBLE_EQ(stats.repeated_attempts, 1.0);
}

TEST(WindowStatsTest, SeqVarianceLowForStreamHighForRandom) {
  std::vector<PacketRecord> stream, random;
  util::Rng rng{11};
  for (int i = 0; i < 100; ++i) {
    stream.push_back(
        tcp_packet(i, 1, 1000, 80, net::TcpFlags::kAck, 100, 100000u + i * 100u));
    random.push_back(tcp_packet(i, 1, 1000, 80, net::TcpFlags::kAck, 100,
                                static_cast<std::uint32_t>(rng.next_u64())));
  }
  const auto s = compute_window_stats(stream, SimTime::seconds(1));
  const auto r = compute_window_stats(random, SimTime::seconds(1));
  EXPECT_LT(s.seq_variance_log, 10.0);
  EXPECT_GT(r.seq_variance_log, 15.0);
}

TEST(WindowStatsTest, SrcAddrEntropyDistinguishesSpoofing) {
  std::vector<PacketRecord> single, spoofed;
  util::Rng rng{12};
  for (int i = 0; i < 100; ++i) {
    single.push_back(tcp_packet(i, 42, 1000, 80, net::TcpFlags::kSyn, 0));
    spoofed.push_back(tcp_packet(i, static_cast<std::uint32_t>(rng.next_u64()), 1000, 80,
                                 net::TcpFlags::kSyn, 0));
  }
  const auto s = compute_window_stats(single, SimTime::seconds(1));
  const auto f = compute_window_stats(spoofed, SimTime::seconds(1));
  EXPECT_EQ(s.src_addr_entropy, 0.0);
  EXPECT_GT(f.src_addr_entropy, 6.0);
}

TEST(WindowStatsTest, StatsFillRowBlock) {
  std::vector<PacketRecord> packets{udp_packet(0, 9000, 100), udp_packet(1, 9001, 100)};
  const auto stats = compute_window_stats(packets, SimTime::seconds(1));
  const FeatureRow row = make_feature_row(packets[0], stats);
  EXPECT_DOUBLE_EQ(row[kWinPacketCount], 2.0);
  EXPECT_DOUBLE_EQ(row[kWinUdpFraction], 1.0);
  EXPECT_DOUBLE_EQ(row[kWinDstPortEntropy], 1.0);  // two distinct ports
  EXPECT_DOUBLE_EQ(row[kProtoIsTcp], 0.0);
}

// --------------------------------------------------------------------------
// 1 s window boundaries: single-packet windows, an empty window between
// populated ones, and a packet stamped exactly on the window edge.
// --------------------------------------------------------------------------

TEST(WindowStatsTest, SinglePacketWindowIsFullyDefined) {
  std::vector<PacketRecord> packets{tcp_packet(250, 1, 1000, 80, net::TcpFlags::kSyn, 0, 7)};
  const auto stats = compute_window_stats(packets, SimTime::seconds(1));
  EXPECT_EQ(stats.packet_count, 1u);
  EXPECT_DOUBLE_EQ(stats.byte_rate, 40.0);     // one 40-byte header per second
  EXPECT_DOUBLE_EQ(stats.dst_port_entropy, 0.0);
  EXPECT_DOUBLE_EQ(stats.src_addr_entropy, 0.0);
  EXPECT_DOUBLE_EQ(stats.syn_no_ack_ratio, 1.0);
  EXPECT_DOUBLE_EQ(stats.short_lived_flows, 1.0);
  EXPECT_DOUBLE_EQ(stats.repeated_attempts, 0.0);  // one SYN, not three
  EXPECT_DOUBLE_EQ(stats.seq_variance_log, 0.0);   // a single seq has no variance
  EXPECT_DOUBLE_EQ(stats.mean_payload, 0.0);
  EXPECT_DOUBLE_EQ(stats.udp_fraction, 0.0);
}

TEST(WindowStatsTest, EmptyWindowStaysZeroWithAnyDuration) {
  const auto stats = compute_window_stats({}, SimTime::millis(1));
  EXPECT_EQ(stats.packet_count, 0u);
  EXPECT_DOUBLE_EQ(stats.byte_rate, 0.0);
  EXPECT_DOUBLE_EQ(stats.udp_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.seq_variance_log, 0.0);
}

TEST(AggregatorTest, PacketExactlyOnWindowEdgeOpensTheNextWindow) {
  FeatureAggregator agg;
  std::vector<WindowOutput> windows;
  agg.set_on_window([&](const WindowOutput& w) { windows.push_back(w); });

  // Window 0 is [0, 1000) ms: 999 ms is the last tick inside it, and a
  // packet stamped exactly at the 1000 ms edge belongs to window 1.
  agg.add(tcp_packet(999, 1, 1000, 80, 0, 10));
  agg.add(tcp_packet(1000, 1, 1000, 80, 0, 10));
  agg.add(tcp_packet(1999, 1, 1000, 80, 0, 10));
  agg.add(tcp_packet(2000, 1, 1000, 80, 0, 10));
  agg.flush();

  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].window_index, 0u);
  EXPECT_EQ(windows[0].rows.size(), 1u);
  EXPECT_EQ(windows[1].window_index, 1u);
  EXPECT_EQ(windows[1].rows.size(), 2u);  // the edge packet + 1999 ms
  EXPECT_EQ(windows[1].window_start, SimTime::seconds(1));
  EXPECT_EQ(windows[2].window_index, 2u);
  EXPECT_EQ(windows[2].rows.size(), 1u);
  EXPECT_EQ(windows[2].window_start, SimTime::seconds(2));
}

TEST(AggregatorTest, SingleEdgePacketMakesASingletonWindow) {
  FeatureAggregator agg;
  std::vector<WindowOutput> windows;
  agg.set_on_window([&](const WindowOutput& w) { windows.push_back(w); });
  agg.add(tcp_packet(3000, 1, 1000, 80, 0, 10));  // exactly on the w3 edge
  agg.flush();

  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].window_index, 3u);
  EXPECT_EQ(windows[0].rows.size(), 1u);
  // The statistical block of a singleton window is well-defined.
  EXPECT_DOUBLE_EQ(windows[0].rows[0][kWinPacketCount], 1.0);
}

// --------------------------------------------------------------------------
// FeatureAggregator
// --------------------------------------------------------------------------

TEST(AggregatorTest, RejectsBadWindow) {
  EXPECT_THROW(FeatureAggregator(AggregatorConfig{SimTime::seconds(0)}),
               std::invalid_argument);
}

TEST(AggregatorTest, SplitsPacketsIntoWindows) {
  FeatureAggregator agg;
  std::vector<WindowOutput> windows;
  agg.set_on_window([&](const WindowOutput& w) { windows.push_back(w); });

  // 3 packets in window 0, 2 in window 1, 1 in window 3 (window 2 empty).
  for (int t : {100, 400, 900}) agg.add(tcp_packet(t, 1, 1000, 80, 0, 10));
  for (int t : {1100, 1900}) agg.add(tcp_packet(t, 1, 1000, 80, 0, 10));
  agg.add(tcp_packet(3500, 1, 1000, 80, 0, 10));
  agg.flush();

  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].window_index, 0u);
  EXPECT_EQ(windows[0].rows.size(), 3u);
  EXPECT_EQ(windows[1].window_index, 1u);
  EXPECT_EQ(windows[1].rows.size(), 2u);
  EXPECT_EQ(windows[2].window_index, 3u);
  EXPECT_EQ(windows[2].rows.size(), 1u);
  EXPECT_EQ(windows[2].window_start, SimTime::seconds(3));
  EXPECT_EQ(agg.windows_emitted(), 3u);
}

TEST(AggregatorTest, StatisticalBlockSharedWithinWindow) {
  FeatureAggregator agg;
  std::vector<WindowOutput> windows;
  agg.set_on_window([&](const WindowOutput& w) { windows.push_back(w); });
  agg.add(tcp_packet(0, 1, 1000, 80, net::TcpFlags::kSyn, 0));
  agg.add(udp_packet(500, 9000, 300));
  agg.flush();

  ASSERT_EQ(windows.size(), 1u);
  const auto& rows = windows[0].rows;
  ASSERT_EQ(rows.size(), 2u);
  for (std::size_t f = kWinPacketCount; f < kFeatureCount; ++f) {
    EXPECT_DOUBLE_EQ(rows[0][f], rows[1][f]) << "stat feature " << f;
  }
  // Basic block differs.
  EXPECT_NE(rows[0][kProtoIsTcp], rows[1][kProtoIsTcp]);
}

TEST(AggregatorTest, LabelsAlignWithRows) {
  FeatureAggregator agg;
  std::vector<WindowOutput> windows;
  agg.set_on_window([&](const WindowOutput& w) { windows.push_back(w); });
  agg.add(tcp_packet(0, 1, 1000, 80, 0, 10, 0, net::TrafficOrigin::kHttp));
  agg.add(tcp_packet(1, 1, 1001, 80, 0, 10, 0, net::TrafficOrigin::kMiraiSynFlood));
  agg.flush();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].labels, (std::vector<int>{0, 1}));
}

TEST(AggregatorTest, OutOfOrderPacketsRejected) {
  FeatureAggregator agg;
  agg.set_on_window([](const WindowOutput&) {});
  agg.add(tcp_packet(2500, 1, 1000, 80, 0, 10));
  EXPECT_THROW(agg.add(tcp_packet(500, 1, 1000, 80, 0, 10)), std::invalid_argument);
}

TEST(AggregatorTest, FlushOnEmptyIsNoOp) {
  FeatureAggregator agg;
  int calls = 0;
  agg.set_on_window([&](const WindowOutput&) { ++calls; });
  agg.flush();
  EXPECT_EQ(calls, 0);
}

TEST(AggregatorTest, CustomWindowDuration) {
  FeatureAggregator agg{AggregatorConfig{SimTime::millis(500)}};
  std::vector<WindowOutput> windows;
  agg.set_on_window([&](const WindowOutput& w) { windows.push_back(w); });
  agg.add(tcp_packet(100, 1, 1000, 80, 0, 10));
  agg.add(tcp_packet(600, 1, 1000, 80, 0, 10));
  agg.flush();
  EXPECT_EQ(windows.size(), 2u);
  EXPECT_EQ(agg.window_duration(), SimTime::millis(500));
}

TEST(ExtractFeaturesTest, MatrixAlignsWithDataset) {
  capture::Dataset ds;
  for (int i = 0; i < 25; ++i) {
    ds.add(tcp_packet(i * 200, 1, 1000, 80, net::TcpFlags::kAck, 10, 0,
                      i % 5 == 0 ? net::TrafficOrigin::kMiraiAckFlood
                                 : net::TrafficOrigin::kHttp));
  }
  const FeatureMatrix fm = extract_features(ds);
  EXPECT_EQ(fm.size(), 25u);
  EXPECT_EQ(fm.rows.size(), fm.labels.size());
  int malicious = 0;
  for (int l : fm.labels) malicious += l;
  EXPECT_EQ(malicious, 5);
  // Row i corresponds to dataset record i (insertion order preserved).
  EXPECT_DOUBLE_EQ(fm.rows[7][kTimestamp], 1.4);
}

}  // namespace
}  // namespace ddoshield::features
